// Read-mix axis of the snapshot-read plane: one deterministic arrival
// stream per read fraction (0.5 -> 0.99 of arrivals are pure read-only
// transactions, Zipf-skewed over a shared hot set with the transfer
// writers), run twice — Options::snapshot_reads off (reads take the
// locked commit path) and on (reads ride the lock-free CSN-stamped MVCC
// plane) — at a load the locked path cannot sustain (Poisson mean gap
// kReadMixGap against max_inflight = kReadMixCap). Plus a scan row: an
// OLTP transfer stream with a concurrent scan stream of wide read-only
// transactions (a second TrafficEngine at read_fraction = 1, id-offset
// so the streams share the database without colliding).
//
// Measures, per (read fraction, snapshot on/off):
//   - snapshot reads served and the derived reads_per_tick (for the off
//     rows, read-only commits of the locked path — counted through the
//     completion callback so the column means the same thing on both
//     sides of the axis);
//   - write-commit latency p99 (DatabaseStats::write_latency — the
//     read-only commits are excluded so the tail is comparable across
//     the axis), msgs per commit, commits per tick, shed arrivals.
//
// It doubles as the snapshot-plane regression gate, exiting nonzero when
// any fails:
//   - every row's DatabaseStats, BatchStats, and read fingerprint must
//     be bitwise identical between the serial inline reference (one
//     queue, one thread, no partition plane) and the same stream placed
//     on 4 shards with worker threads;
//   - at read fraction 0.99 the snapshot plane must serve at least
//     kReadSpeedupFloor x the locked path's reads per tick — the whole
//     point of routing read-only transactions around the protocol;
//   - turning snapshot reads on must not regress the write p99 at any
//     read fraction (readers leave the lock table, so write tails may
//     only improve);
//   - on-rows must agree with DatabaseStats: the callback-counted
//     read-only commits must equal read_only_committed (and the kGets
//     snapshot_reads_served) — the snapshot plane serves *every*
//     read-only transaction, none may leak onto the locked path;
//   - the scan row must serve every scan (read_only_committed equals the
//     scan stream's arrivals) while the writers sustain >= kOltpFloor of
//     their offered load.
//
// Usage:
//   bench_db_readmix [--txs N] [--threads M] [--json PATH]
//
// Default: N = 20000 arrivals per run, M = 2 (threads for the placed
// runs). --json writes the machine-readable row set consumed by
// tools/bench_compare.py (see BENCH_baseline.json).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "db/database.h"
#include "db/traffic.h"

namespace fastcommit::bench {
namespace {

using Clock = std::chrono::steady_clock;

constexpr double kReadMixGap = 1.0;     ///< ticks between arrivals (mean)
constexpr int64_t kReadMixCap = 64;     ///< max_inflight of the mix rows
constexpr double kReadSpeedupFloor = 2.0;  ///< reads/tick, on vs off @0.99
constexpr double kOltpFloor = 0.95;     ///< scan row: writer sustain gate
constexpr int64_t kScanTxIdOffset = 1'000'000'000;  ///< scan stream ids
constexpr int kScanReadsPerTx = 32;     ///< kGets per scan transaction

db::TrafficOptions MixTraffic(double read_fraction) {
  db::TrafficOptions traffic;
  traffic.process = db::ArrivalProcess::kPoisson;
  traffic.mean_gap = kReadMixGap;
  traffic.shape = db::TxShape::kTransferPair;
  traffic.read_fraction = read_fraction;
  traffic.reads_per_tx = 4;
  // A small Zipf-hot key space: in the locked rows the readers'shared
  // locks sit on exactly the keys the writers want, which is the regime
  // the snapshot plane exists for.
  traffic.num_keys = 4096;
  traffic.zipf_exponent = 0.99;
  traffic.seed = 42;
  return traffic;
}

struct Result {
  double wall_seconds = 0;
  db::DatabaseStats stats;
  db::Database::BatchStats batch;
  uint64_t fingerprint = 0;  ///< Database::read_fingerprint after drain
  int64_t flushes = 0;       ///< partition-plane barriers run
  /// Read-only commits seen by the completion callback — on the locked
  /// rows these ride the normal path (stats.read_only_committed stays 0),
  /// so the callback is the only counter that means the same thing on
  /// both sides of the snapshot axis.
  int64_t read_txs = 0;
  int64_t read_ops = 0;  ///< kGets carried by those commits
};

db::Database::Options BaseOptions(bool snapshot, int64_t max_inflight,
                                  int shards, int threads,
                                  bool partition_parallel) {
  db::Database::Options options;
  options.num_partitions = 8;
  options.protocol = core::ProtocolKind::kInbac;
  options.num_shards = shards;
  options.num_threads = threads;
  options.partition_parallel = partition_parallel;
  options.max_inflight = max_inflight;
  options.snapshot_reads = snapshot;
  return options;
}

Result Finish(db::Database& database, Clock::time_point start) {
  Result result;
  result.stats = database.Drain();
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  result.batch = database.batch_stats();
  result.fingerprint = database.read_fingerprint();
  result.flushes = database.partition_plane().flushes();
  return result;
}

db::Database::CompletionCallback CountReads(Result* result) {
  return [result](const db::Transaction& tx, commit::Decision decision) {
    if (decision == commit::Decision::kCommit && db::IsReadOnly(tx)) {
      ++result->read_txs;
      result->read_ops += static_cast<int64_t>(tx.ops.size());
    }
  };
}

Result RunMix(double read_fraction, bool snapshot, int num_arrivals,
              int shards, int threads, bool partition_parallel) {
  db::Database database(BaseOptions(snapshot, kReadMixCap, shards, threads,
                                    partition_parallel));
  db::TrafficOptions traffic = MixTraffic(read_fraction);
  traffic.num_arrivals = num_arrivals;
  db::TrafficEngine engine(traffic);
  Result result;
  auto start = Clock::now();
  database.SubmitArrivals(&engine, CountReads(&result));
  Result drained = Finish(database, start);
  drained.read_txs = result.read_txs;
  drained.read_ops = result.read_ops;
  return drained;
}

/// The scan row: transfer writers at a comfortable rate plus a concurrent
/// stream of wide read-only scans (its own engine, ids offset past every
/// OLTP id). Uncapped — the gate is that the snapshot plane serves every
/// scan while the writers keep sustaining, not that admission binds.
Result RunScan(int num_arrivals, int shards, int threads,
               bool partition_parallel) {
  db::Database database(BaseOptions(/*snapshot=*/true, /*max_inflight=*/0,
                                    shards, threads, partition_parallel));
  db::TrafficOptions oltp;
  oltp.process = db::ArrivalProcess::kPoisson;
  oltp.mean_gap = 40.0;
  oltp.shape = db::TxShape::kTransferPair;
  oltp.num_keys = 4096;
  oltp.zipf_exponent = 0.99;
  oltp.num_arrivals = num_arrivals;
  oltp.seed = 42;

  db::TrafficOptions scan = oltp;
  scan.read_fraction = 1.0;
  scan.reads_per_tx = kScanReadsPerTx;
  // One scan per 8 writes on average, over the same virtual span.
  scan.mean_gap = oltp.mean_gap * 8.0;
  scan.num_arrivals = num_arrivals / 8;
  scan.first_tx_id = kScanTxIdOffset;
  scan.seed = 7;

  db::TrafficEngine oltp_engine(oltp);
  db::TrafficEngine scan_engine(scan);
  Result result;
  auto start = Clock::now();
  database.SubmitArrivals(&oltp_engine, CountReads(&result));
  database.SubmitArrivals(&scan_engine, CountReads(&result));
  Result drained = Finish(database, start);
  drained.read_txs = result.read_txs;
  drained.read_ops = result.read_ops;
  return drained;
}

double ReadsPerTick(const Result& r) {
  return r.stats.makespan == 0 ? 0.0
                               : static_cast<double>(r.read_ops) /
                                     static_cast<double>(r.stats.makespan);
}

void PrintResult(const std::string& label, const Result& r, bool identical) {
  std::printf(
      "  %-22s committed %7lld  read txs %7lld  reads/tick %7.3f  "
      "shed %7lld  write p99 %6lld  stats %s\n",
      label.c_str(), static_cast<long long>(r.stats.committed),
      static_cast<long long>(r.read_txs), ReadsPerTick(r),
      static_cast<long long>(r.stats.shed),
      static_cast<long long>(r.stats.write_latency.Percentile(99)),
      identical ? "identical" : "DIVERGED");
}

}  // namespace
}  // namespace fastcommit::bench

int main(int argc, char** argv) {
  using namespace fastcommit;
  using namespace fastcommit::bench;

  int num_arrivals = 20000;
  int threads = 2;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--txs") == 0 && i + 1 < argc) {
      num_arrivals = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--txs N] [--threads M] [--json PATH]\n",
                   argv[0]);
      return 1;
    }
  }

  PrintHeader("DB read mix: locked path vs the snapshot read plane");
  std::printf(
      "%d arrivals per run, 8 partitions, transfer writers + %d-key reads "
      "over 4096 Zipf(0.99) keys,\nPoisson mean gap %.0f against "
      "max_inflight = %lld, placement check on 4 shards / %d threads\n",
      num_arrivals, MixTraffic(0.5).reads_per_tx, kReadMixGap,
      static_cast<long long>(kReadMixCap), threads);

  JsonBenchReport report("db_readmix", num_arrivals);
  bool diverged = false;
  bool speedup_failed = false;
  bool write_p99_regressed = false;
  bool leaked_reads = false;
  bool scan_failed = false;

  // Serial inline reference vs the placed partition-parallel run: stats,
  // batch counters, and the snapshot-read fingerprint must all match, so
  // the gate covers read *results*, not just outcome counts.
  auto check_identity = [&](const Result& serial, const Result& placed) {
    bool identical = serial.stats == placed.stats &&
                     serial.batch == placed.batch &&
                     serial.fingerprint == placed.fingerprint;
    if (!identical) diverged = true;
    return identical;
  };

  auto add_row = [&](const std::string& key, const Result& r) -> auto& {
    auto& row = report.AddRow(key);
    row.Set("offered", r.stats.offered)
        .Set("committed", r.stats.committed)
        .Set("shed", r.stats.shed)
        .Set("msgs_per_commit",
             MsgsPerCommit(r.stats.commit_messages, r.stats.committed))
        .Set("commits_per_tick",
             CommitsPerTick(r.stats.committed, r.stats.makespan))
        .Set("write_p99_latency_ticks",
             static_cast<int64_t>(r.stats.write_latency.Percentile(99)))
        .Set("barrier_flushes", r.flushes)
        .Set("makespan_ticks", static_cast<int64_t>(r.stats.makespan))
        .Set("wall_seconds", r.wall_seconds)
        .Set("committed_per_sec_wall",
             CommittedPerSecWall(r.stats.committed, r.wall_seconds));
    // The callback-side counters, not stats.read_only_committed: on the
    // locked rows the reads commit through the protocol and the column
    // must still mean "read-only transactions served".
    SetSnapshotColumns(row, r.read_txs, r.read_ops,
                       static_cast<int64_t>(r.stats.makespan));
    return row;
  };

  std::printf("\nread-fraction sweep\n");
  PrintRule();
  for (double fraction : {0.5, 0.9, 0.99}) {
    Result pair[2];  // [0] = snapshot off (locked reads), [1] = on
    for (int snapshot = 0; snapshot <= 1; ++snapshot) {
      Result serial = RunMix(fraction, snapshot != 0, num_arrivals, 1, 1,
                             /*partition_parallel=*/false);
      Result placed = RunMix(fraction, snapshot != 0, num_arrivals, 4,
                             threads, /*partition_parallel=*/true);
      bool identical = check_identity(serial, placed);
      char label[64];
      std::snprintf(label, sizeof(label), "read=%.2f/snapshot=%d", fraction,
                    snapshot);
      PrintResult(label, placed, identical);
      add_row(std::string("inbac/") + label, placed);
      pair[snapshot] = placed;
      if (snapshot == 1 &&
          (placed.read_txs != placed.stats.read_only_committed ||
           placed.read_ops != placed.stats.snapshot_reads_served)) {
        leaked_reads = true;
        std::printf(
            "  SNAPSHOT LEAK: %lld read commits / %lld kGets vs counters "
            "%lld / %lld — read-only transactions took the locked path\n",
            static_cast<long long>(placed.read_txs),
            static_cast<long long>(placed.read_ops),
            static_cast<long long>(placed.stats.read_only_committed),
            static_cast<long long>(placed.stats.snapshot_reads_served));
      }
    }
    double speedup = ReadsPerTick(pair[0]) == 0.0
                         ? 0.0
                         : ReadsPerTick(pair[1]) / ReadsPerTick(pair[0]);
    int64_t p99_off = pair[0].stats.write_latency.Percentile(99);
    int64_t p99_on = pair[1].stats.write_latency.Percentile(99);
    std::printf("  -> read=%.2f: snapshot plane %.2fx reads/tick, write p99 "
                "%lld -> %lld ticks\n",
                fraction, speedup, static_cast<long long>(p99_off),
                static_cast<long long>(p99_on));
    if (fraction == 0.99 && speedup < kReadSpeedupFloor) {
      speedup_failed = true;
      std::printf("  READ THROUGHPUT REGRESSION: %.2fx (floor %.1fx)\n",
                  speedup, kReadSpeedupFloor);
    }
    if (p99_on > p99_off) {
      write_p99_regressed = true;
      std::printf("  WRITE TAIL REGRESSION: snapshot on p99 %lld > off %lld\n",
                  static_cast<long long>(p99_on),
                  static_cast<long long>(p99_off));
    }
    char speedup_key[64];
    std::snprintf(speedup_key, sizeof(speedup_key),
                  "inbac/read=%.2f/speedup", fraction);
    report.AddRow(speedup_key)
        .Set("read_speedup_vs_locked", speedup)
        .Set("write_p99_off_ticks", p99_off)
        .Set("write_p99_on_ticks", p99_on);
  }

  std::printf("\nscan stream beside OLTP writers (snapshot on)\n");
  PrintRule();
  {
    Result serial = RunScan(num_arrivals, 1, 1, /*partition_parallel=*/false);
    Result placed = RunScan(num_arrivals, 4, threads,
                            /*partition_parallel=*/true);
    bool identical = check_identity(serial, placed);
    PrintResult("scan+oltp/snapshot=1", placed, identical);
    add_row("inbac/scan+oltp/snapshot=1", placed);
    int64_t scans_offered = num_arrivals / 8;
    double writer_achieved =
        num_arrivals == 0 ? 0.0
                          : static_cast<double>(placed.stats.committed +
                                                placed.stats.aborted) /
                                static_cast<double>(num_arrivals);
    if (placed.stats.read_only_committed != scans_offered ||
        placed.stats.committed <
            static_cast<int64_t>(kOltpFloor *
                                 static_cast<double>(num_arrivals))) {
      scan_failed = true;
      std::printf(
          "  SCAN REGRESSION: %lld/%lld scans served, %lld/%d writers "
          "committed (floor %.2f, %.3f of offered reached a decision)\n",
          static_cast<long long>(placed.stats.read_only_committed),
          static_cast<long long>(scans_offered),
          static_cast<long long>(placed.stats.committed), num_arrivals,
          kOltpFloor, writer_achieved);
    } else {
      std::printf(
          "  -> every scan served at its snapshot (%lld x %d kGets), "
          "writers committed %lld/%d\n",
          static_cast<long long>(scans_offered), kScanReadsPerTx,
          static_cast<long long>(placed.stats.committed), num_arrivals);
    }
  }

  if (diverged) std::printf("\nDETERMINISM VIOLATION: stats diverged\n");
  bool json_failed = false;
  if (!json_path.empty()) json_failed = !report.WriteTo(json_path);
  return diverged || speedup_failed || write_p99_regressed || leaked_reads ||
                 scan_failed || json_failed
             ? 2
             : 0;
}
