// Table 3 — Message-optimal protocols: 0NBAC, aNBAC, (n-1+f)NBAC, avNBAC,
// (2n-2)NBAC and (2n-2+f)NBAC each match the message lower bound of their
// cell in every nice execution.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace fastcommit::bench {
namespace {

using core::ProtocolKind;

constexpr ProtocolKind kMessageOptimal[] = {
    ProtocolKind::kZeroNbac,  ProtocolKind::kANbac,
    ProtocolKind::kChainNbac, ProtocolKind::kAvNbacLean,
    ProtocolKind::kBcastNbac, ProtocolKind::kChainAckNbac,
};

void PrintTable() {
  PrintHeader("Table 3 — message-optimal protocols (nice executions)");
  std::printf("%-20s %-12s %10s %10s %10s %10s\n", "protocol", "cell(CF,NF)",
              "bound m", "meas. m", "meas. d", "verdict");
  PrintRule();
  for (ProtocolKind kind : kMessageOptimal) {
    core::Cell cell = core::ProtocolCell(kind);
    for (auto [n, f] : {std::pair<int, int>{4, 1}, {6, 2}, {8, 5}}) {
      int64_t bound = core::MessageLowerBound(cell, n, f);
      Measured m = MeasureNice(kind, n, f);
      std::string cell_name = "(" + core::PropSetName(cell.crash) + "," +
                              core::PropSetName(cell.network) + ")";
      std::printf("%-20s %-12s %10lld %10lld %10lld %10s  (n=%d f=%d)\n",
                  core::ProtocolName(kind), cell_name.c_str(),
                  static_cast<long long>(bound),
                  static_cast<long long>(m.messages),
                  static_cast<long long>(m.delays),
                  Verdict(m.messages, bound), n, f);
    }
  }
  std::printf(
      "\nTradeoff check: every message-optimal protocol above that needs\n"
      "validity pays more than the 1-delay optimum, as Theorem 2 predicts\n"
      "(a 1-delay protocol must use n(n-1) messages).\n");
}

void BM_MessageOptimalNice(benchmark::State& state) {
  auto kind = static_cast<ProtocolKind>(state.range(0));
  for (auto _ : state) {
    core::RunResult result = core::Run(core::MakeNiceConfig(kind, 6, 2));
    benchmark::DoNotOptimize(result.decide_times.data());
  }
}

}  // namespace
}  // namespace fastcommit::bench

BENCHMARK(fastcommit::bench::BM_MessageOptimalNice)
    ->Arg(static_cast<int>(fastcommit::core::ProtocolKind::kZeroNbac))
    ->Arg(static_cast<int>(fastcommit::core::ProtocolKind::kANbac))
    ->Arg(static_cast<int>(fastcommit::core::ProtocolKind::kChainNbac))
    ->Arg(static_cast<int>(fastcommit::core::ProtocolKind::kAvNbacLean))
    ->Arg(static_cast<int>(fastcommit::core::ProtocolKind::kBcastNbac))
    ->Arg(static_cast<int>(fastcommit::core::ProtocolKind::kChainAckNbac));

int main(int argc, char** argv) {
  fastcommit::bench::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
