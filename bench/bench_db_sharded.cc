// Sharded-simulator scaling: the same 100k-transaction workload drained on
// one event queue vs N per-shard queues with M worker threads, with
// partition data-path work (Prepare/apply/release) executing on-shard via
// the partition plane (db/partition_plane.h) or inline on the control
// plane.
//
// Measures, per (protocol, {shards, threads, prepare placement}):
//   - committed transactions per wall-clock second and the speedup over
//     the serial baseline (shards=1, threads=1, prepare inline);
//   - bitwise equality of DatabaseStats against the baseline — the sharded
//     merge rule's and the partition plane's determinism gate at bench
//     scale;
//   - pool counters (peak live stays O(concurrency), never O(transactions)).
//
// Transactions arrive in bursts (kBurst at one instant, then a gap with the
// same long-run arrival rate as bench_db_throughput's steady 40-tick
// spacing). Bursts model group-commit-style admission and give the merge
// loop wide conflict-free windows, which is where multi-core drains pay off.
//
// Usage:
//   bench_db_sharded [--txs N] [--threads M] [--json PATH]
//
// Default: N = 100000, M = 4 (threads used for the threaded configs).
// --json writes the machine-readable row set (per-config wall clock and
// speedup — the multi-core scaling curve CI records as an artifact — plus
// the deterministic simulated metrics the compare gate checks).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "db/database.h"
#include "db/workload.h"

namespace fastcommit::bench {
namespace {

using Clock = std::chrono::steady_clock;

constexpr int kBurst = 256;
constexpr sim::Time kMeanArrivalGap = 40;  // ticks per tx, long-run average

struct Config {
  const char* name;
  int shards;
  int threads;
  /// Prepare on-shard (db/partition_plane.h) vs inline on the control
  /// plane; a placement knob, so stats must not move with it.
  bool partition_parallel = true;
};

struct Result {
  double wall_seconds = 0;
  double txs_per_second = 0;
  db::DatabaseStats stats;
  db::CommitInstancePool::Stats pool;
};

Result RunOne(core::ProtocolKind protocol, int num_txs, const Config& config) {
  db::Database::Options options;
  options.num_partitions = 8;
  options.protocol = protocol;
  options.num_shards = config.shards;
  options.num_threads = config.threads;
  options.partition_parallel = config.partition_parallel;
  db::Database database(options);

  auto txs = db::MakeTransferWorkload(num_txs, /*num_accounts=*/2000,
                                      /*max_amount=*/50, /*seed=*/42);
  auto start = Clock::now();
  sim::Time at = 0;
  int in_burst = 0;
  for (auto& tx : txs) {
    database.Submit(std::move(tx), at);
    if (++in_burst == kBurst) {
      in_burst = 0;
      at += kBurst * kMeanArrivalGap;
    }
  }
  Result result;
  result.stats = database.Drain();
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  result.txs_per_second =
      static_cast<double>(result.stats.committed) / result.wall_seconds;
  result.pool = database.pool_stats();
  return result;
}

void PrintResult(const Config& config, const Result& r, const Result& base) {
  double speedup = base.wall_seconds / r.wall_seconds;
  std::printf(
      "  %-22s %7.2fs wall  %9.0f txs/s  %5.2fx  peak live %5lld  "
      "created %6lld  stats %s\n",
      config.name, r.wall_seconds, r.txs_per_second, speedup,
      static_cast<long long>(r.pool.peak_live),
      static_cast<long long>(r.pool.created),
      r.stats == base.stats ? "identical" : "DIVERGED");
}

}  // namespace
}  // namespace fastcommit::bench

int main(int argc, char** argv) {
  using namespace fastcommit;
  using namespace fastcommit::bench;

  int num_txs = 100000;
  int threads = 4;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--txs") == 0 && i + 1 < argc) {
      num_txs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--txs N] [--threads M] [--json PATH]\n",
                   argv[0]);
      return 1;
    }
  }

  const core::ProtocolKind kProtocols[] = {
      core::ProtocolKind::kInbac,
      core::ProtocolKind::kTwoPc,
      core::ProtocolKind::kPaxosCommit,
  };

  const Config kConfigs[] = {
      // Single-queue, prepare inline: the fully serial reference the
      // divergence gate measures every placement against.
      {"1 shard  / 1t inline", 1, 1, false},
      {"1 shard  / 1 thread", 1, 1, true},
      {"4 shards / 1 thread", 4, 1, true},
      {"4 shards / N threads", 4, threads, true},
      {"8 shards / N threads", 8, threads, true},
      {"8 shards / Nt inline", 8, threads, false},
  };

  PrintHeader("DB commit throughput: sharded event queues + worker threads");
  unsigned cores = std::thread::hardware_concurrency();
  std::printf(
      "%d transactions per run, transfer workload, 8 partitions, bursts of "
      "%d, N = %d threads, %u hardware core%s\n",
      num_txs, kBurst, threads, cores, cores == 1 ? "" : "s");
  if (cores != 0 && static_cast<int>(cores) < threads) {
    std::printf(
        "NOTE: fewer cores than threads — threaded configs cannot show "
        "wall-clock scaling on this machine (expect ~1x or a small "
        "barrier overhead); determinism results remain meaningful.\n");
  }

  JsonBenchReport report("db_sharded", num_txs);
  bool diverged = false;
  for (core::ProtocolKind protocol : kProtocols) {
    std::printf("\n%s\n", core::ProtocolName(protocol));
    PrintRule();
    Result base;
    for (const Config& config : kConfigs) {
      Result r = RunOne(protocol, num_txs, config);
      // The serial reference is the first config (1 shard, 1 thread,
      // prepare inline); every other placement — including the threaded
      // prepare-on-shard drains — must match it bitwise.
      if (config.shards == 1 && config.threads == 1 &&
          !config.partition_parallel) {
        base = r;
      }
      if (r.stats != base.stats) diverged = true;
      PrintResult(config, r, base);
      report
          .AddRow(std::string(core::ProtocolName(protocol)) + "/shards=" +
                  std::to_string(config.shards) + "/threads=" +
                  std::to_string(config.threads) +
                  (config.partition_parallel ? "" : "/inline"))
          .Set("committed", r.stats.committed)
          .Set("prepare_on_shard",
               static_cast<int64_t>(config.partition_parallel ? 1 : 0))
          .Set("msgs_per_commit",
               MsgsPerCommit(r.stats.commit_messages, r.stats.committed))
          .Set("mean_latency_ticks", r.stats.MeanLatency())
          .Set("p99_latency_ticks",
               static_cast<int64_t>(r.stats.PercentileLatency(99)))
          .Set("peak_live_instances", r.pool.peak_live)
          .Set("commits_per_tick",
               CommitsPerTick(r.stats.committed, r.stats.makespan))
          .Set("wall_seconds", r.wall_seconds)
          .Set("txs_per_second", r.txs_per_second)
          .Set("committed_per_sec_wall",
               CommittedPerSecWall(r.stats.committed, r.wall_seconds))
          .Set("speedup_vs_single_queue",
               r.wall_seconds == 0 ? 0.0 : base.wall_seconds / r.wall_seconds);
    }
  }
  // Nonzero on divergence so CI runs of this bench double as the sharded
  // determinism regression gate.
  if (diverged) std::printf("\nDETERMINISM VIOLATION: stats diverged\n");
  bool json_failed = false;
  if (!json_path.empty()) json_failed = !report.WriteTo(json_path);
  return diverged || json_failed ? 2 : 0;
}
