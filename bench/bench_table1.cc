// Table 1 — Complexity of Atomic Commit: the tight lower bounds (message
// delays / messages) for all 27 robustness cells, with the matching
// protocol of each bound group executed in a nice execution to demonstrate
// tightness.
//
// The paper proves each bound for the least robust cell of its group and
// matches it at the locally-maximal cells; we print the full 8x8 grid in
// the paper's layout and measure the matching protocol for every group.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace fastcommit::bench {
namespace {

using core::Cell;
using core::ProtocolKind;

/// The protocol that demonstrates tightness of a cell's *message* bound.
ProtocolKind MessageWitness(Cell cell, int n, int f) {
  int64_t bound = core::MessageLowerBound(cell, n, f);
  if (bound == 0) return ProtocolKind::kZeroNbac;
  if (bound == n - 1 + f) return ProtocolKind::kChainNbac;
  if (bound == 2 * n - 2) return ProtocolKind::kBcastNbac;
  return ProtocolKind::kChainAckNbac;  // 2n - 2 + f
}

/// The protocol that demonstrates tightness of a cell's *delay* bound.
ProtocolKind DelayWitness(Cell cell) {
  return core::DelayLowerBound(cell) == 2 ? ProtocolKind::kInbac
                                          : ProtocolKind::kOneNbac;
}

void PrintGrid(int n, int f) {
  PrintHeader(("Table 1 grid (d/m lower bounds), n=" + std::to_string(n) +
               " f=" + std::to_string(f))
                  .c_str());
  const core::PropSet sets[] = {core::kNoProps, core::kA,  core::kV,
                                core::kT,       core::kAV, core::kAT,
                                core::kVT,      core::kAVT};
  std::printf("%6s |", "NF\\CF");
  for (core::PropSet cf : sets) {
    std::printf(" %9s", core::PropSetName(cf).c_str());
  }
  std::printf("\n");
  PrintRule();
  for (core::PropSet nf : sets) {
    std::printf("%6s |", core::PropSetName(nf).c_str());
    for (core::PropSet cf : sets) {
      Cell cell{cf, nf};
      if (!core::IsValidCell(cell)) {
        std::printf(" %9s", "");
        continue;
      }
      std::string entry =
          std::to_string(core::DelayLowerBound(cell)) + "/" +
          std::to_string(core::MessageLowerBound(cell, n, f));
      std::printf(" %9s", entry.c_str());
    }
    std::printf("\n");
  }
}

void PrintWitnesses(int n, int f) {
  PrintHeader(("Tightness witnesses (measured in nice executions), n=" +
               std::to_string(n) + " f=" + std::to_string(f))
                  .c_str());
  std::printf("%-12s %-12s %-20s %10s %10s %10s\n", "cell(CF,NF)", "bound d/m",
              "witness protocol", "meas. d", "meas. m", "verdict");
  PrintRule();
  for (Cell cell : core::AllCells()) {
    int64_t bound_d = core::DelayLowerBound(cell);
    int64_t bound_m = core::MessageLowerBound(cell, n, f);
    // Delay witness: for 1-delay cells, 1NBAC decides in one delay; for
    // 2-delay cells INBAC decides in two. Message witness per group.
    ProtocolKind delay_witness = DelayWitness(cell);
    ProtocolKind message_witness = MessageWitness(cell, n, f);
    Measured d = MeasureNice(delay_witness, n, f);
    Measured m = MeasureNice(message_witness, n, f);
    std::string cell_name = "(" + core::PropSetName(cell.crash) + "," +
                            core::PropSetName(cell.network) + ")";
    std::string bound = std::to_string(bound_d) + "/" + std::to_string(bound_m);
    std::string witness = std::string(core::ProtocolName(delay_witness)) +
                          "+" + core::ProtocolName(message_witness);
    bool ok = d.delays == bound_d && m.messages == bound_m;
    std::printf("%-12s %-12s %-20s %10lld %10lld %10s\n", cell_name.c_str(),
                bound.c_str(), witness.c_str(),
                static_cast<long long>(d.delays),
                static_cast<long long>(m.messages), ok ? "ok" : "MISMATCH");
  }
}

void BM_Table1NiceExecution(benchmark::State& state) {
  auto kind = static_cast<ProtocolKind>(state.range(0));
  int n = static_cast<int>(state.range(1));
  int f = static_cast<int>(state.range(2));
  int64_t messages = 0;
  for (auto _ : state) {
    core::RunResult result = core::Run(core::MakeNiceConfig(kind, n, f));
    messages = result.PaperMessageCount();
    benchmark::DoNotOptimize(result.decisions.data());
  }
  state.counters["messages"] = static_cast<double>(messages);
}

}  // namespace
}  // namespace fastcommit::bench

BENCHMARK(fastcommit::bench::BM_Table1NiceExecution)
    ->Args({static_cast<int>(fastcommit::core::ProtocolKind::kZeroNbac), 6, 2})
    ->Args({static_cast<int>(fastcommit::core::ProtocolKind::kChainNbac), 6, 2})
    ->Args({static_cast<int>(fastcommit::core::ProtocolKind::kBcastNbac), 6, 2})
    ->Args({static_cast<int>(fastcommit::core::ProtocolKind::kChainAckNbac), 6,
            2})
    ->Args({static_cast<int>(fastcommit::core::ProtocolKind::kInbac), 6, 2});

int main(int argc, char** argv) {
  for (auto [n, f] : {std::pair<int, int>{5, 1}, {6, 2}, {9, 4}}) {
    fastcommit::bench::PrintGrid(n, f);
    fastcommit::bench::PrintWitnesses(n, f);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
