// Figure 1 — the state transition of an INBAC process after 2U. The figure
// is a state machine, not a data plot; we reproduce it by driving every
// branch and reporting how often each transition is taken as failure
// severity increases: nice executions take only the leftmost path
// (f correct acks -> n votes -> decide AND); crashes and late messages
// push processes into the consensus and ask-for-more-acks paths.

#include <array>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "commit/inbac.h"

namespace fastcommit::bench {
namespace {

using commit::Inbac;
using core::ProtocolKind;

constexpr Inbac::Branch kBranches[] = {
    Inbac::Branch::kFastDecide,  Inbac::Branch::kConsAnd,
    Inbac::Branch::kConsZero,    Inbac::Branch::kAskHelp,
    Inbac::Branch::kHelpDecide,  Inbac::Branch::kHelpConsAnd,
    Inbac::Branch::kHelpConsZero};

struct Tally {
  std::array<int64_t, 8> counts = {};
  int64_t processes = 0;

  void Absorb(const core::RunResult& result) {
    for (Inbac::Branch b : result.inbac_branches) {
      ++counts[static_cast<size_t>(b)];
      ++processes;
    }
  }
};

void PrintTally(const char* scenario, const Tally& tally) {
  std::printf("%-28s", scenario);
  for (Inbac::Branch b : kBranches) {
    double share = tally.processes == 0
                       ? 0.0
                       : 100.0 * static_cast<double>(
                                     tally.counts[static_cast<size_t>(b)]) /
                             static_cast<double>(tally.processes);
    std::printf(" %7.1f%%", share);
  }
  std::printf("\n");
}

void PrintTable() {
  PrintHeader("Figure 1 — INBAC state-transition coverage (n=5, f=2)");
  std::printf("%-28s", "scenario");
  for (Inbac::Branch b : kBranches) {
    std::printf(" %8s", Inbac::BranchName(b));
  }
  std::printf("\n");
  PrintRule();

  // Nice executions: only the fast path.
  {
    Tally tally;
    tally.Absorb(core::Run(core::MakeNiceConfig(ProtocolKind::kInbac, 5, 2)));
    PrintTally("nice", tally);
  }
  // Crash-failure sweep: one random backup crash.
  {
    Tally tally;
    for (uint64_t seed = 1; seed <= 50; ++seed) {
      core::RunConfig config =
          core::MakeCrashConfig(ProtocolKind::kInbac, 5, 2,
                                {core::CrashSpec{static_cast<int>(seed % 2),
                                                 0, 50}},
                                seed);
      tally.Absorb(core::Run(config));
    }
    PrintTally("one backup crash", tally);
  }
  // Both backups crash: the ask-for-more-acks path dominates.
  {
    Tally tally;
    for (uint64_t seed = 1; seed <= 50; ++seed) {
      core::RunConfig config = core::MakeCrashConfig(
          ProtocolKind::kInbac, 5, 2,
          {core::CrashSpec{0, 0, 0}, core::CrashSpec{1, 0, 0}}, seed);
      tally.Absorb(core::Run(config));
    }
    PrintTally("both backups crash", tally);
  }
  // Network failures of increasing severity.
  for (double late : {0.1, 0.4, 0.8}) {
    Tally tally;
    for (uint64_t seed = 1; seed <= 50; ++seed) {
      core::RunConfig config =
          core::MakeNetworkFailureConfig(ProtocolKind::kInbac, 5, 2, seed);
      config.delays.late_probability = late;
      tally.Absorb(core::Run(config));
    }
    char label[64];
    std::snprintf(label, sizeof(label), "late messages p=%.1f", late);
    PrintTally(label, tally);
  }
}

void BM_Fig1NetworkFailureRun(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    core::RunConfig config =
        core::MakeNetworkFailureConfig(ProtocolKind::kInbac, 5, 2, seed++);
    config.delays.late_probability = 0.5;
    core::RunResult result = core::Run(config);
    benchmark::DoNotOptimize(result.inbac_branches.data());
  }
}

}  // namespace
}  // namespace fastcommit::bench

BENCHMARK(fastcommit::bench::BM_Fig1NetworkFailureRun);

int main(int argc, char** argv) {
  fastcommit::bench::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
